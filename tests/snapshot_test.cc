// Snapshot isolation: the epoch manager's pin/publish/reclaim protocol,
// the view tree's epoch-versioned read path (EnableSnapshots / Snapshot /
// EnumerateSnapshot), and the serving contract — readers on pinned
// immutable versions while ONE maintainer thread keeps writing. The
// multi-threaded tests here are the TSan targets for the feature.
#include <atomic>
#include <cstdint>
#include <map>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "incr/engines/engine.h"
#include "incr/ring/int_ring.h"
#include "incr/util/epoch.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

enum : Var { A = 0, B = 1, C = 2 };

ViewTreeEngine<IntRing> MakeEngine() {
  Query q("Q", Schema{A, B, C},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{A, C}}});
  auto tree = ViewTree<IntRing>::Make(q);
  INCR_CHECK(tree.ok());
  return ViewTreeEngine<IntRing>(*std::move(tree));
}

// Small value domain keeps every version tiny — the held-snapshot tests
// retain hundreds of versions at once.
std::vector<Delta<IntRing>> DrawUpdates(size_t n, uint64_t seed,
                                        bool insert_only = false) {
  Rng rng(seed);
  std::vector<Delta<IntRing>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Delta<IntRing> d;
    d.relation.assign(rng.Chance(0.5) ? "R" : "S", 1);
    d.tuple = Tuple{rng.UniformInt(0, 7), rng.UniformInt(0, 7)};
    d.delta = insert_only || rng.Chance(0.7) ? 1 : -1;
    out.push_back(std::move(d));
  }
  return out;
}

void ApplyBatches(ViewTreeEngine<IntRing>& e,
                  const std::vector<Delta<IntRing>>& updates, size_t batch) {
  for (size_t off = 0; off < updates.size(); off += batch) {
    size_t n = std::min(batch, updates.size() - off);
    e.ApplyBatch(std::span<const Delta<IntRing>>(updates.data() + off, n));
  }
}

using RowList = std::vector<std::pair<Tuple, int64_t>>;

RowList SnapRows(const ViewTreeSnapshot<IntRing>& s) {
  RowList out;
  for (ViewTreeEnumerator<IntRing> it = s.Enumerate(); it.Valid();
       it.Next()) {
    out.emplace_back(it.tuple(), it.payload());
  }
  return out;
}

std::map<Tuple, int64_t> EnumMap(IvmEngine<IntRing>& e) {
  std::map<Tuple, int64_t> out;
  e.Enumerate([&](const Tuple& t, const int64_t& p) { out[t] += p; });
  return out;
}

std::map<Tuple, int64_t> SnapEnumMap(IvmEngine<IntRing>& e) {
  std::map<Tuple, int64_t> out;
  e.EnumerateSnapshot([&](const Tuple& t, const int64_t& p) { out[t] += p; });
  return out;
}

std::string DumpBytes(IvmEngine<IntRing>& e) {
  store::ByteWriter w;
  Status st = e.DumpState(w);
  EXPECT_TRUE(st.ok()) << st.message();
  return w.Take();
}

EngineOptions SnapshotOpts(size_t max_retained, size_t threads = 1) {
  EngineOptions o;
  o.threads = threads;
  o.snapshot_reads = true;
  o.max_retained_epochs = max_retained;
  return o;
}

// ----------------------------------------------------------------------
// epoch::Manager

TEST(EpochManagerTest, PublishPinAndReclaimFloor) {
  epoch::Manager m;
  EXPECT_EQ(m.published(), 0u);
  EXPECT_EQ(m.MinActive(), epoch::Manager::kNone);
  m.Publish(1);
  EXPECT_EQ(m.published(), 1u);
  {
    epoch::ReadGuard g(&m);
    EXPECT_EQ(g.epoch(), 1u);
    EXPECT_EQ(m.MinActive(), 1u);
    EXPECT_EQ(m.ActiveReaders(), 1u);
    m.Publish(2);
    // The old pin keeps the reclamation floor at 1 while a fresh pin
    // lands on the new epoch.
    epoch::ReadGuard g2(&m);
    EXPECT_EQ(g2.epoch(), 2u);
    EXPECT_EQ(m.MinActive(), 1u);
    EXPECT_EQ(m.ActiveReaders(), 2u);
  }
  EXPECT_EQ(m.MinActive(), epoch::Manager::kNone);
  EXPECT_EQ(m.ActiveReaders(), 0u);
}

TEST(EpochManagerTest, GuardMoveTransfersThePin) {
  epoch::Manager m;
  m.Publish(5);
  epoch::ReadGuard outer(&m);
  {
    epoch::ReadGuard inner = std::move(outer);
    EXPECT_EQ(inner.epoch(), 5u);
    EXPECT_EQ(m.ActiveReaders(), 1u);  // one pin, not two
  }
  // The moved-to guard released on scope exit; the moved-from one must
  // not double-release.
  EXPECT_EQ(m.ActiveReaders(), 0u);
  EXPECT_EQ(m.MinActive(), epoch::Manager::kNone);
}

TEST(EpochManagerTest, ManyConcurrentPinsObserveMonotoneEpochs) {
  epoch::Manager m;
  m.Publish(1);
  std::atomic<bool> stop{false};
  std::atomic<bool> fail{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      uint64_t last = 0;
      while (!stop.load(std::memory_order_acquire)) {
        epoch::ReadGuard g(&m);
        if (g.epoch() < last || g.epoch() > m.published()) {
          fail.store(true);
          return;
        }
        last = g.epoch();
      }
    });
  }
  for (uint64_t e = 2; e <= 2000; ++e) m.Publish(e);
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(fail.load());
  EXPECT_EQ(m.published(), 2000u);
}

// ----------------------------------------------------------------------
// View-tree snapshot reads

TEST(SnapshotTest, ExclusiveFallbackWithoutSnapshots) {
  ViewTreeEngine<IntRing> e = MakeEngine();
  ApplyBatches(e, DrawUpdates(200, 1), 50);
  EXPECT_FALSE(e.tree().snapshots_enabled());
  EXPECT_EQ(e.tree().published_epoch(), 0u);
  EXPECT_EQ(SnapEnumMap(e), EnumMap(e));
}

TEST(SnapshotTest, PinnedSnapshotIsStableUnderWrites) {
  ViewTreeEngine<IntRing> e = MakeEngine();
  e.Configure(SnapshotOpts(64));
  ApplyBatches(e, DrawUpdates(200, 2), 50);

  ViewTreeSnapshot<IntRing> snap = e.tree().Snapshot();
  const uint64_t pinned = snap.epoch();
  const RowList before = SnapRows(snap);
  const int64_t agg_before = snap.Aggregate();

  ApplyBatches(e, DrawUpdates(300, 3), 10);  // 30 more published epochs

  // The held handle still reads the pinned version, bit-identically.
  EXPECT_EQ(snap.epoch(), pinned);
  EXPECT_EQ(SnapRows(snap), before);
  EXPECT_EQ(snap.Aggregate(), agg_before);

  // A fresh snapshot sees the new head, which matches the exclusive view.
  ViewTreeSnapshot<IntRing> head = e.tree().Snapshot();
  EXPECT_EQ(head.epoch(), pinned + 30);
  EXPECT_EQ(SnapEnumMap(e), EnumMap(e));
}

TEST(SnapshotTest, SingleTupleUpdatePublishesOneEpoch) {
  ViewTreeEngine<IntRing> e = MakeEngine();
  e.Configure(SnapshotOpts(4));
  const uint64_t e0 = e.tree().published_epoch();
  EXPECT_GE(e0, 1u);  // EnableSnapshots publishes the current state
  e.Update("R", Tuple{1, 2}, 1);
  EXPECT_EQ(e.tree().published_epoch(), e0 + 1);
  e.Update("S", Tuple{1, 3}, 1);
  EXPECT_EQ(e.tree().published_epoch(), e0 + 2);
  EXPECT_EQ(SnapEnumMap(e), EnumMap(e));
}

TEST(SnapshotTest, BatchDumpBitIdenticalToExclusiveEngine) {
  // Identical ApplyBatch sequences must serialize identically whether or
  // not snapshots are enabled: snapshot-mode DumpState serializes the
  // caught-up build state, i.e. exactly the published epoch.
  ViewTreeEngine<IntRing> snap_eng = MakeEngine();
  snap_eng.Configure(SnapshotOpts(3));
  ViewTreeEngine<IntRing> plain_eng = MakeEngine();
  auto updates = DrawUpdates(400, 4);
  ApplyBatches(snap_eng, updates, 25);
  ApplyBatches(plain_eng, updates, 25);
  EXPECT_EQ(DumpBytes(snap_eng), DumpBytes(plain_eng));
}

TEST(SnapshotTest, RecyclingKeepsRetainedVersionsBounded) {
  ViewTreeEngine<IntRing> e = MakeEngine();
  e.Configure(SnapshotOpts(2));
  ViewTreeEngine<IntRing> shadow = MakeEngine();
  auto updates = DrawUpdates(600, 5);
  ApplyBatches(e, updates, 10);  // 60 published epochs
  ApplyBatches(shadow, updates, 10);
  EXPECT_EQ(e.tree().published_epoch(), 1u + 60u);
  EXPECT_LE(e.tree().RetainedVersions(), 2u);
  EXPECT_EQ(EnumMap(e), EnumMap(shadow));
  EXPECT_EQ(SnapEnumMap(e), EnumMap(shadow));
}

TEST(SnapshotTest, ThreadSwitchMidStreamStaysCorrect) {
  // SetThreads reshards the W storage, which the recycle log cannot
  // replay onto retired versions — the tree must republish and keep
  // serving correct snapshots.
  ViewTreeEngine<IntRing> e = MakeEngine();
  e.Configure(SnapshotOpts(4));
  ViewTreeEngine<IntRing> shadow = MakeEngine();
  auto first = DrawUpdates(200, 6);
  auto second = DrawUpdates(200, 7);
  ApplyBatches(e, first, 20);
  ApplyBatches(shadow, first, 20);
  e.Configure(SnapshotOpts(4, /*threads=*/2));
  ApplyBatches(e, second, 20);
  ApplyBatches(shadow, second, 20);
  EXPECT_EQ(SnapEnumMap(e), EnumMap(shadow));
  ViewTreeSnapshot<IntRing> snap = e.tree().Snapshot();
  EXPECT_EQ(snap.epoch(), e.tree().published_epoch());
}

// ----------------------------------------------------------------------
// Serving: readers under a live maintainer (TSan coverage)

TEST(ServingTest, ReaderHoldsSnapshotAcrossThousandBatches) {
  ViewTreeEngine<IntRing> e = MakeEngine();
  // One snapshot is held across the whole run, so every epoch published
  // meanwhile stays retained: size the cap for 1000 batches + slack.
  e.Configure(SnapshotOpts(1100));
  ApplyBatches(e, DrawUpdates(100, 8), 25);

  ViewTreeSnapshot<IntRing> held = e.tree().Snapshot();
  const uint64_t pinned = held.epoch();
  const RowList want = SnapRows(held);

  std::atomic<bool> stop{false};
  std::atomic<bool> fail{false};
  std::thread reader([&, held = std::move(held)] {
    while (!fail.load(std::memory_order_relaxed)) {
      if (SnapRows(held) != want || held.epoch() != pinned) {
        fail.store(true);
        return;
      }
      if (stop.load(std::memory_order_acquire)) return;
    }
  });

  auto updates = DrawUpdates(10000, 9);
  ApplyBatches(e, updates, 10);  // 1000 published epochs under the pin
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_FALSE(fail.load()) << "held snapshot changed under writes";
  EXPECT_EQ(e.tree().published_epoch(), pinned + 1000);
  EXPECT_EQ(SnapEnumMap(e), EnumMap(e));
}

TEST(ServingTest, ConcurrentReadersUnderParallelMaintainer) {
  ViewTreeEngine<IntRing> e = MakeEngine();
  e.Configure(SnapshotOpts(4, /*threads=*/2));
  ApplyBatches(e, DrawUpdates(100, 10), 25);
  ViewTreeEngine<IntRing> shadow = MakeEngine();
  shadow.Configure(SnapshotOpts(4, /*threads=*/2));
  ApplyBatches(shadow, DrawUpdates(100, 10), 25);

  const ViewTree<IntRing>& tree = e.tree();
  std::atomic<bool> stop{false};
  std::atomic<bool> fail{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      uint64_t last = 0;
      while (!stop.load(std::memory_order_acquire)) {
        ViewTreeSnapshot<IntRing> snap = tree.Snapshot();
        if (snap.epoch() < last) {
          fail.store(true);
          return;
        }
        last = snap.epoch();
        SnapRows(snap);  // full constant-delay enumeration under writes
      }
    });
  }

  auto updates = DrawUpdates(2000, 11);
  ApplyBatches(e, updates, 10);
  ApplyBatches(shadow, updates, 10);
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_FALSE(fail.load()) << "a reader observed a non-monotone epoch";
  EXPECT_EQ(EnumMap(e), EnumMap(shadow));
  EXPECT_EQ(DumpBytes(e), DumpBytes(shadow));
}

}  // namespace
}  // namespace incr
