// TPC-H census tests (paper §4.4): the classification of the 22 flattened
// join structures and the FD-driven jump. The paper reports the FDs adding
// +4 hierarchical queries on the ICDE'09 encodings; our flattening shows
// the same +4 (10 -> 14), via the same mechanism (ok -> ck and sk -> nk
// closing the customer-orders-lineitem / partsupp-supplier conflicts).
#include <gtest/gtest.h>

#include "incr/query/fd.h"
#include "incr/query/properties.h"
#include "incr/workload/tpch.h"

namespace incr {
namespace {

const TpchQuery& Get(const std::vector<TpchQuery>& qs, int number) {
  for (const TpchQuery& q : qs) {
    if (q.number == number) return q;
  }
  ADD_FAILURE() << "missing query " << number;
  return qs.front();
}

TEST(TpchTest, CatalogIsComplete) {
  auto qs = TpchQueries();
  ASSERT_EQ(qs.size(), 22u);
  for (const TpchQuery& q : qs) {
    EXPECT_FALSE(q.boolean.atoms().empty());
    EXPECT_TRUE(q.boolean.free().empty());
    EXPECT_EQ(q.full.AllVars().size(), q.full.free().size());
  }
}

TEST(TpchTest, KnownClassifications) {
  auto qs = TpchQueries();
  // Single-atom and key-chain queries are hierarchical outright.
  for (int n : {1, 4, 6, 12, 13, 14, 15, 17, 19, 22}) {
    EXPECT_TRUE(IsHierarchical(Get(qs, n).boolean)) << "Q" << n;
  }
  // The classic customer-orders-lineitem chain (Q3) is NOT hierarchical:
  // atoms(ck) and atoms(ok) overlap on orders without containment.
  for (int n : {2, 3, 5, 7, 8, 9, 10, 11, 16, 18, 20, 21}) {
    EXPECT_FALSE(IsHierarchical(Get(qs, n).boolean)) << "Q" << n;
  }
  // Q5 is the one cyclic structure (the customer/supplier nation cycle).
  EXPECT_FALSE(IsAlphaAcyclic(Get(qs, 5).full));
  for (int n : {2, 3, 9, 21}) {
    EXPECT_TRUE(IsAlphaAcyclic(Get(qs, n).full)) << "Q" << n;
  }
}

TEST(TpchTest, FdsFlipExactlyTheChainQueries) {
  auto qs = TpchQueries();
  // The FD-driven flips: Q3 and Q10 (ok -> ck), Q11 (sk -> nk), Q18
  // (ok -> ck with the lineitem self-join).
  for (int n : {3, 10, 11, 18}) {
    const TpchQuery& q = Get(qs, n);
    FdSet fds = TpchFdsFor(q.full);
    EXPECT_FALSE(IsHierarchical(q.boolean)) << "Q" << n;
    EXPECT_TRUE(IsQHierarchicalUnderFds(q.boolean, fds)) << "Q" << n;
    EXPECT_TRUE(IsQHierarchicalUnderFds(q.full, fds)) << "Q" << n;
  }
  // Queries the FDs cannot fix (shared-key cycles / partsupp diamonds).
  for (int n : {2, 5, 9, 16, 20, 21}) {
    const TpchQuery& q = Get(qs, n);
    EXPECT_FALSE(IsQHierarchicalUnderFds(q.boolean, TpchFdsFor(q.full)))
        << "Q" << n;
  }
}

TEST(TpchTest, CensusTotals) {
  // The headline numbers the census bench prints; pinned so encoding
  // regressions are caught. Paper's increment from FDs is +4 on its
  // encodings; ours is the same +4.
  auto qs = TpchQueries();
  int hier = 0, hier_fd = 0;
  for (const TpchQuery& q : qs) {
    FdSet fds = TpchFdsFor(q.full);
    hier += IsHierarchical(q.boolean);
    hier_fd += IsQHierarchicalUnderFds(q.boolean, fds);
  }
  EXPECT_EQ(hier, 10);
  EXPECT_EQ(hier_fd, 14);
}

TEST(TpchTest, FdGeneratorCoversRoles) {
  auto qs = TpchQueries();
  // Q7 has two nation roles: both FDs... nation atoms are unary there, so
  // no FD; supplier and customer and orders each contribute one.
  FdSet fds7 = TpchFdsFor(Get(qs, 7).full);
  EXPECT_EQ(fds7.size(), 3u);
  // Q2: supplier, nation, (orders absent) => supplier sk->nk, nation
  // nk->rk.
  FdSet fds2 = TpchFdsFor(Get(qs, 2).full);
  EXPECT_EQ(fds2.size(), 2u);
}

}  // namespace
}  // namespace incr
