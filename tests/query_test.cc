// Classifier tests (DESIGN.md invariant 9): hierarchical, q-hierarchical,
// acyclic, free-connex, FD-reduct — checked against every example the paper
// labels, plus variable-order structure tests.
#include <gtest/gtest.h>

#include "incr/query/fd.h"
#include "incr/query/properties.h"
#include "incr/query/query.h"
#include "incr/query/variable_order.h"

namespace incr {
namespace {

enum : Var { A = 0, B = 1, C = 2, D = 3, W = 4, X = 5, Y = 6, Z = 7 };

TEST(QueryTest, BasicAccessors) {
  Query q("Q", Schema{A}, {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B}}});
  EXPECT_EQ(q.AllVars(), (Schema{A, B}));
  EXPECT_EQ(q.BoundVars(), (Schema{B}));
  EXPECT_TRUE(q.IsFree(A));
  EXPECT_FALSE(q.IsFree(B));
  EXPECT_EQ(q.AtomsContaining(B), (std::vector<size_t>{0, 1}));
  EXPECT_TRUE(q.IsSelfJoinFree());
  Query sj("Q", Schema{}, {Atom{"E", Schema{A}}, Atom{"E", Schema{B}}});
  EXPECT_FALSE(sj.IsSelfJoinFree());
}

TEST(PropertiesTest, PaperExample43NonHierarchical) {
  // Ex. 4.3: Q = SUM_{X,Y} R(X) * S(X,Y) * T(Y) is not hierarchical...
  Query q("Q", Schema{},
          {Atom{"R", Schema{X}}, Atom{"S", Schema{X, Y}},
           Atom{"T", Schema{Y}}});
  EXPECT_FALSE(IsHierarchical(q));
  // ...but dropping any atom makes it hierarchical.
  for (size_t drop = 0; drop < 3; ++drop) {
    std::vector<Atom> atoms;
    for (size_t i = 0; i < 3; ++i) {
      if (i != drop) atoms.push_back(q.atoms()[i]);
    }
    EXPECT_TRUE(IsHierarchical(Query("Q", Schema{}, atoms))) << drop;
  }
}

TEST(PropertiesTest, PaperExample43HierarchicalNotQ) {
  // Ex. 4.3: Q(X) = SUM_Y R(X,Y) * S(Y) is hierarchical, not q-hierarchical
  // (Y dominates free X but Y is bound).
  Query q("Q", Schema{X},
          {Atom{"R", Schema{X, Y}}, Atom{"S", Schema{Y}}});
  EXPECT_TRUE(IsHierarchical(q));
  EXPECT_FALSE(IsQHierarchical(q));
  // The Boolean version (no free vars) is q-hierarchical.
  Query qb("Qb", Schema{}, q.atoms());
  EXPECT_TRUE(IsQHierarchical(qb));
  // The full-output version is also q-hierarchical.
  Query qf("Qf", Schema{X, Y}, q.atoms());
  EXPECT_TRUE(IsQHierarchical(qf));
}

TEST(PropertiesTest, Fig3QueryIsQHierarchical) {
  Query q("Q", Schema{Y, X, Z},
          {Atom{"R", Schema{Y, X}}, Atom{"S", Schema{Y, Z}}});
  EXPECT_TRUE(IsQHierarchical(q));
  EXPECT_TRUE(IsFreeConnex(q));
}

TEST(PropertiesTest, TriangleIsCyclic) {
  Query q("Q", Schema{},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
           Atom{"T", Schema{C, A}}});
  EXPECT_FALSE(IsHierarchical(q));
  EXPECT_FALSE(IsAlphaAcyclic(q));
  EXPECT_FALSE(IsFreeConnex(q));
}

TEST(PropertiesTest, PathJoinAcyclicNotHierarchical) {
  // Q1 of Ex. 4.5: R(A,B)*S(B,C)*T(C,D), all free.
  Query q("Q1", Schema{A, B, C, D},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
           Atom{"T", Schema{C, D}}});
  EXPECT_FALSE(IsHierarchical(q));
  EXPECT_TRUE(IsAlphaAcyclic(q));
  EXPECT_TRUE(IsFreeConnex(q));  // all variables free
  EXPECT_FALSE(IsQHierarchical(q));
}

TEST(PropertiesTest, FreeConnexDistinguishesProjections) {
  // R(A,B) * S(B,C): free {A,C} is acyclic but NOT free-connex; free {B} is
  // free-connex.
  std::vector<Atom> atoms{Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}}};
  Query ac("Q", Schema{A, C}, atoms);
  EXPECT_TRUE(IsAlphaAcyclic(ac));
  EXPECT_FALSE(IsFreeConnex(ac));
  Query b("Q", Schema{B}, atoms);
  EXPECT_TRUE(IsFreeConnex(b));
}

TEST(PropertiesTest, LoomisWhitneyIsCyclic) {
  // LW4: four relations on the 3-subsets of {A,B,C,D}.
  Query q("LW", Schema{},
          {Atom{"R1", Schema{A, B, C}}, Atom{"R2", Schema{A, B, D}},
           Atom{"R3", Schema{A, C, D}}, Atom{"R4", Schema{B, C, D}}});
  EXPECT_FALSE(IsAlphaAcyclic(q));
}

TEST(VariableOrderTest, CanonicalShapeForFig3) {
  Query q("Q", Schema{Y, X, Z},
          {Atom{"R", Schema{Y, X}}, Atom{"S", Schema{Y, Z}}});
  auto vo = VariableOrder::Canonical(q);
  ASSERT_TRUE(vo.ok());
  // Y is the root; X and Z are its children, each with key {Y}.
  ASSERT_EQ(vo->roots().size(), 1u);
  const VoNode& root = vo->nodes()[static_cast<size_t>(vo->roots()[0])];
  EXPECT_EQ(root.var, Y);
  ASSERT_EQ(root.children.size(), 2u);
  for (int c : root.children) {
    EXPECT_EQ(vo->nodes()[static_cast<size_t>(c)].key, (Schema{Y}));
  }
  EXPECT_TRUE(vo->FreeVarsAncestorClosed());
}

TEST(VariableOrderTest, CanonicalPutsBoundBelowFree) {
  // Q(X) = SUM_Y R(X,Y): X free above bound Y? atoms(X)=atoms(Y)={R}; the
  // free-first tie-break keeps X on top.
  Query q("Q", Schema{X}, {Atom{"R", Schema{X, Y}}});
  auto vo = VariableOrder::Canonical(q);
  ASSERT_TRUE(vo.ok());
  EXPECT_EQ(vo->nodes()[static_cast<size_t>(vo->roots()[0])].var, X);
  EXPECT_TRUE(vo->FreeVarsAncestorClosed());
}

TEST(VariableOrderTest, RejectsNonHierarchical) {
  Query q("Q", Schema{},
          {Atom{"R", Schema{X}}, Atom{"S", Schema{X, Y}},
           Atom{"T", Schema{Y}}});
  EXPECT_FALSE(VariableOrder::Canonical(q).ok());
}

TEST(VariableOrderTest, FromPathAnchorsAtoms) {
  Query q("Q", Schema{},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
           Atom{"T", Schema{C, A}}});
  auto vo = VariableOrder::FromPath(q, {A, B, C});
  ASSERT_TRUE(vo.ok());
  // R anchored at B, S and T at C.
  EXPECT_EQ(vo->nodes()[1].atoms, (std::vector<size_t>{0}));
  EXPECT_EQ(vo->nodes()[2].atoms, (std::vector<size_t>{1, 2}));
  // key(C) = {A,B} (both S and T reach back up).
  EXPECT_EQ(vo->nodes()[2].key, (Schema{A, B}));
}

TEST(VariableOrderTest, FromParentsRejectsBrokenPaths) {
  // A and C in different branches, but S(A,C) needs them on one path.
  Query q("Q", Schema{A, B, C},
          {Atom{"R", Schema{B, A}}, Atom{"S", Schema{A, C}}});
  // Forest: B root; A and C children of B.
  auto vo = VariableOrder::FromParents(q, {B, A, C}, {-1, 0, 0});
  EXPECT_FALSE(vo.ok());
}

TEST(VariableOrderTest, UngroundedVariableRejected) {
  Query q("Q", Schema{A, B}, {Atom{"R", Schema{A}}, Atom{"S", Schema{B}}});
  // Path B -> A anchors R at A (fine) but B's subtree contains R only...
  // actually B's subtree contains both atoms; use an order where a node's
  // subtree misses its variable: put A as root with child B; S anchored at
  // B, R at A; both grounded => ok.
  auto ok = VariableOrder::FromPath(q, {A, B});
  EXPECT_TRUE(ok.ok());
}

TEST(FdTest, ClosureComputation) {
  // Paper §4.4: Sigma = {A -> C, BC -> D}: C({A,B}) = {A,B,C,D}.
  FdSet fds{{Schema{A}, Schema{C}}, {Schema{B, C}, Schema{D}}};
  Schema closure = FdClosure(fds, Schema{A, B});
  EXPECT_EQ(closure, (Schema{A, B, C, D}));
  EXPECT_EQ(FdClosure(fds, Schema{B}), (Schema{B}));
}

TEST(FdTest, Example412ReductIsQHierarchical) {
  // Ex. 4.12: Q(Z,Y,X,W) = R(X,W)*S(X,Y)*T(Y,Z), Sigma = {X->Y, Y->Z}.
  Query q("Q", Schema{Z, Y, X, W},
          {Atom{"R", Schema{X, W}}, Atom{"S", Schema{X, Y}},
           Atom{"T", Schema{Y, Z}}});
  EXPECT_FALSE(IsHierarchical(q));
  FdSet fds{{Schema{X}, Schema{Y}}, {Schema{Y}, Schema{Z}}};
  Query reduct = SigmaReduct(q, fds);
  EXPECT_EQ(reduct.atoms()[0].schema, (Schema{X, W, Y, Z}));
  EXPECT_EQ(reduct.atoms()[1].schema, (Schema{X, Y, Z}));
  EXPECT_EQ(reduct.atoms()[2].schema, (Schema{Y, Z}));
  EXPECT_TRUE(IsQHierarchical(reduct));
  EXPECT_TRUE(IsQHierarchicalUnderFds(q, fds));

  // The guided order exists and anchors the original atoms.
  auto vo = FdGuidedOrder(q, fds);
  ASSERT_TRUE(vo.ok()) << vo.status().ToString();
  EXPECT_TRUE(vo->FreeVarsAncestorClosed());
}

TEST(FdTest, FdsDoNotAlwaysHelp) {
  // The triangle stays cyclic under an unrelated FD.
  Query q("Q", Schema{},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
           Atom{"T", Schema{C, A}}});
  FdSet fds{{Schema{D}, Schema{A}}};
  EXPECT_FALSE(IsQHierarchicalUnderFds(q, fds));
  EXPECT_FALSE(FdGuidedOrder(q, fds).ok());
}

TEST(FdTest, Example410RetailerShape) {
  // Ex. 4.10: the retailer join becomes hierarchical thanks to zip -> locn.
  // Variables: locn=A, zip=B, other join vars elided to the two critical
  // atoms: Location(locn, zip), Census(zip). atoms(zip) = {Loc, Census},
  // atoms(locn) = {Inventory, Loc, ...}; model the conflict minimally:
  Var locn = A, zip = B, date = C;
  Query q("Q", Schema{locn, zip, date},
          {Atom{"Inventory", Schema{locn, date}},
           Atom{"Location", Schema{locn, zip}},
           Atom{"Census", Schema{zip}}});
  EXPECT_FALSE(IsHierarchical(q));
  FdSet fds{{Schema{zip}, Schema{locn}}};
  EXPECT_TRUE(IsQHierarchicalUnderFds(q, fds));
}

}  // namespace
}  // namespace incr
