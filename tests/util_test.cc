#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "incr/util/hash.h"
#include "incr/util/rng.h"
#include "incr/util/small_vector.h"
#include "incr/util/stats.h"
#include "incr/util/status.h"
#include "incr/util/thread_pool.h"

namespace incr {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad schema");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad schema");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad schema");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(SmallVectorTest, InlineThenHeap) {
  SmallVector<int64_t, 2> v;
  EXPECT_TRUE(v.empty());
  for (int64_t i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  for (int64_t i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVectorTest, CopyAndMove) {
  SmallVector<int64_t, 2> v{1, 2, 3, 4, 5};
  SmallVector<int64_t, 2> copy = v;
  EXPECT_EQ(copy, v);
  SmallVector<int64_t, 2> moved = std::move(copy);
  EXPECT_EQ(moved, v);
  EXPECT_TRUE(copy.empty());  // NOLINT(bugprone-use-after-move)

  // Inline-stored move.
  SmallVector<int64_t, 4> small{7, 8};
  SmallVector<int64_t, 4> small2 = std::move(small);
  EXPECT_EQ(small2.size(), 2u);
  EXPECT_EQ(small2[0], 7);
}

TEST(SmallVectorTest, SelfAssignmentIsNoop) {
  SmallVector<int64_t, 2> v{1, 2, 3};
  auto& alias = v;
  v = alias;
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 3);
}

TEST(SmallVectorTest, ComparisonOperators) {
  SmallVector<int64_t, 2> a{1, 2};
  SmallVector<int64_t, 2> b{1, 3};
  SmallVector<int64_t, 2> c{1, 2};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a == c);
  EXPECT_TRUE(a != b);
}

TEST(SmallVectorTest, ResizeAndPopBack) {
  SmallVector<int64_t, 2> v;
  v.resize(10, 9);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v[9], 9);
  v.pop_back();
  EXPECT_EQ(v.size(), 9u);
}

TEST(HashTest, Mix64Avalanches) {
  // Flipping one input bit should flip roughly half the output bits.
  uint64_t base = Mix64(12345);
  int total = 0;
  for (int bit = 0; bit < 64; ++bit) {
    uint64_t flipped = Mix64(12345ULL ^ (1ULL << bit));
    total += __builtin_popcountll(base ^ flipped);
  }
  double avg = total / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(HashTest, SpanHashOrderSensitive) {
  uint64_t a[] = {1, 2};
  uint64_t b[] = {2, 1};
  EXPECT_NE(HashSpan64(a, 2), HashSpan64(b, 2));
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(17);
    EXPECT_LT(v, 17u);
  }
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformCoversDomain) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ZipfTest, SkewConcentratesMass) {
  Rng rng(5);
  ZipfSampler zipf(1000, 1.2);
  int head = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Sample(rng) < 10) ++head;
  }
  // With s=1.2 the top-10 of 1000 values carry far more than 10/1000 of the
  // mass; expect > 40%.
  EXPECT_GT(head, kSamples * 40 / 100);
}

TEST(ZipfTest, ZeroSkewIsUniformish) {
  Rng rng(5);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(StatsTest, MeanPercentileMax) {
  std::vector<double> xs = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(Mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(Max(xs), 5.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(StatsTest, PercentileEdgeCases) {
  // Empty input: 0 regardless of p.
  EXPECT_DOUBLE_EQ(Percentile({}, 0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 100), 0.0);
  // Single element: returned for every p.
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 50), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 100), 7.0);
  // p=0 is the minimum, p=100 the maximum.
  std::vector<double> xs = {9, 2, 7, 4};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 9.0);
  // Nearest-rank interior points.
  EXPECT_DOUBLE_EQ(Percentile(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 75), 7.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 99), 9.0);
}

TEST(StatsTest, NearestRank) {
  EXPECT_EQ(NearestRank(1, 0), 0u);
  EXPECT_EQ(NearestRank(1, 100), 0u);
  EXPECT_EQ(NearestRank(4, 0), 0u);
  EXPECT_EQ(NearestRank(4, 25), 0u);
  EXPECT_EQ(NearestRank(4, 50), 1u);
  EXPECT_EQ(NearestRank(4, 75), 2u);
  EXPECT_EQ(NearestRank(4, 100), 3u);
  EXPECT_EQ(NearestRank(100, 50), 49u);
  EXPECT_EQ(NearestRank(100, 99), 98u);
}

TEST(StatsTest, LogLogSlopeRecoversExponent) {
  std::vector<double> x, y;
  for (double n = 1000; n <= 1e6; n *= 10) {
    x.push_back(n);
    y.push_back(3.0 * std::pow(n, 1.5));
  }
  EXPECT_NEAR(LogLogSlope(x, y), 1.5, 1e-9);
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(64,
                       [](size_t i) {
                         if (i == 17) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The job drained fully despite the failure: the pool is reusable and
  // a subsequent job runs every index.
  std::atomic<size_t> ran{0};
  pool.ParallelFor(32, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 32u);
}

TEST(ThreadPoolTest, ParallelForPreservesExceptionMessage) {
  ThreadPool pool(3);
  try {
    pool.ParallelFor(16, [](size_t i) {
      if (i % 2 == 0) throw std::runtime_error("worker failed");
    });
    FAIL() << "ParallelFor swallowed the exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker failed");
  }
}

TEST(ThreadPoolTest, InlinePathPropagatesException) {
  // threads <= 1 runs tasks inline on the caller; the exception must
  // surface the same way as on the worker path.
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(8,
                                [](size_t i) {
                                  if (i == 3) throw std::logic_error("inline");
                                }),
               std::logic_error);
  std::atomic<size_t> ran{0};
  pool.ParallelFor(8, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8u);
}

TEST(StatsTest, LogLogSlopeSkipsNonPositive) {
  std::vector<double> x = {0, 10, 100, 1000};
  std::vector<double> y = {5, 1, 10, 100};
  EXPECT_NEAR(LogLogSlope(x, y), 1.0, 1e-9);
}

}  // namespace
}  // namespace incr
