// Batch commutativity (paper §2) and delta enumeration (paper §1,
// footnote 2) tests.
#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "incr/core/view_tree.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

enum : Var { A = 0, B = 1, C = 2 };

Query TheQuery() {
  return Query("Q", Schema{A, B, C},
               {Atom{"R", Schema{A, B}}, Atom{"S", Schema{A, C}}});
}

TEST(BatchTest, BatchesCommute) {
  // Apply the same batch in many random orders; every view must end
  // identical — the ring-payload commutativity the paper §2 highlights.
  Rng rng(4);
  std::vector<ViewTree<IntRing>::BatchEntry> batch;
  for (int i = 0; i < 120; ++i) {
    batch.push_back({rng.Uniform(2),
                     Tuple{rng.UniformInt(0, 5), rng.UniformInt(0, 5)},
                     rng.Chance(0.4) ? -1 : 2});
  }
  auto reference = ViewTree<IntRing>::Make(TheQuery());
  ASSERT_TRUE(reference.ok());
  reference->ApplyBatch(batch);
  for (int perm = 0; perm < 5; ++perm) {
    auto shuffled = batch;
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.Uniform(i)]);
    }
    auto tree = ViewTree<IntRing>::Make(TheQuery());
    ASSERT_TRUE(tree.ok());
    tree->ApplyBatch(shuffled);
    EXPECT_EQ(tree->Aggregate(), reference->Aggregate());
    for (size_t n = 0; n < tree->plan().nodes().size(); ++n) {
      const auto& wa = tree->NodeW(static_cast<int>(n));
      const auto& wb = reference->NodeW(static_cast<int>(n));
      ASSERT_EQ(wa.size(), wb.size()) << "perm " << perm;
      for (const auto& e : wa) ASSERT_EQ(wb.Payload(e.key), e.value);
    }
  }
}

TEST(DeltaEnumTest, ReportsAppearedChangedDisappeared) {
  auto tree = ViewTree<IntRing>::Make(TheQuery());
  ASSERT_TRUE(tree.ok());
  tree->Update("R", Tuple{1, 10}, 1);
  tree->Update("S", Tuple{1, 20}, 1);

  // Appearance: inserting S(1,21) creates (1,10,21).
  std::map<Tuple, std::pair<int64_t, int64_t>> deltas;
  tree->UpdateAtomWithDeltaEnum(
      1, Tuple{1, 21}, 1,
      [&](const Tuple& t, const int64_t& before, const int64_t& now) {
        deltas[t] = {before, now};
      });
  ASSERT_EQ(deltas.size(), 1u);
  auto [b0, n0] = deltas.begin()->second;
  EXPECT_EQ(b0, 0);
  EXPECT_EQ(n0, 1);

  // Payload change: bumping R(1,10) multiplies both outputs.
  deltas.clear();
  tree->UpdateAtomWithDeltaEnum(
      0, Tuple{1, 10}, 2,
      [&](const Tuple& t, const int64_t& before, const int64_t& now) {
        deltas[t] = {before, now};
      });
  EXPECT_EQ(deltas.size(), 2u);
  for (const auto& [t, d] : deltas) {
    EXPECT_EQ(d.first, 1);
    EXPECT_EQ(d.second, 3);
  }

  // Disappearance: deleting S(1,20) removes one tuple.
  deltas.clear();
  tree->UpdateAtomWithDeltaEnum(
      1, Tuple{1, 20}, -1,
      [&](const Tuple& t, const int64_t& before, const int64_t& now) {
        deltas[t] = {before, now};
      });
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas.begin()->second.first, 3);
  EXPECT_EQ(deltas.begin()->second.second, 0);

  // No-op update on an unrelated key reports nothing.
  deltas.clear();
  tree->UpdateAtomWithDeltaEnum(
      0, Tuple{9, 9}, 1,
      [&](const Tuple& t, const int64_t& before, const int64_t& now) {
        deltas[t] = {before, now};
      });
  EXPECT_TRUE(deltas.empty());
}

TEST(DeltaEnumTest, DeltasAccumulateToFullOutput) {
  // Summing all reported deltas over a random stream reconstructs the
  // final output exactly.
  auto tree = ViewTree<IntRing>::Make(TheQuery());
  ASSERT_TRUE(tree.ok());
  Rng rng(6);
  std::map<Tuple, int64_t> accumulated;
  std::vector<std::pair<size_t, Tuple>> live;
  for (int step = 0; step < 600; ++step) {
    size_t atom;
    Tuple t;
    int64_t m;
    if (!live.empty() && rng.Chance(0.3)) {
      size_t i = rng.Uniform(live.size());
      atom = live[i].first;
      t = live[i].second;
      m = -1;
      live[i] = live.back();
      live.pop_back();
    } else {
      atom = rng.Uniform(2);
      t = Tuple{rng.UniformInt(0, 6), rng.UniformInt(0, 6)};
      m = 1;
      live.emplace_back(atom, t);
    }
    tree->UpdateAtomWithDeltaEnum(
        atom, t, m,
        [&](const Tuple& out, const int64_t& before, const int64_t& now) {
          accumulated[out] += now - before;
          if (accumulated[out] == 0) accumulated.erase(out);
        });
  }
  std::map<Tuple, int64_t> full;
  for (ViewTreeEnumerator<IntRing> it(*tree); it.Valid(); it.Next()) {
    full[it.tuple()] = it.payload();
  }
  EXPECT_EQ(accumulated, full);
}

}  // namespace
}  // namespace incr
