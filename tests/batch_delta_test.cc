// Batch commutativity (paper §2), node-at-a-time batch application vs
// sequential per-tuple application, and delta enumeration (paper §1,
// footnote 2) tests.
#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "incr/core/view_tree.h"
#include "incr/ring/covar_ring.h"
#include "incr/ring/int_ring.h"
#include "incr/ring/product_ring.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

enum : Var { A = 0, B = 1, C = 2 };

Query TheQuery() {
  return Query("Q", Schema{A, B, C},
               {Atom{"R", Schema{A, B}}, Atom{"S", Schema{A, C}}});
}

// Non-q-hierarchical: Q(A) = SUM_B R(A,B) * S(B), path order A -> B.
Query FanoutQuery() {
  return Query("Q", Schema{A}, {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B}}});
}

// Cyclic: the triangle Q() = R(A,B), S(B,C), T(C,A), path order A -> B -> C.
Query TriangleQuery() {
  return Query("Q", Schema{},
               {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
                Atom{"T", Schema{C, A}}});
}

// Every W and M view of both trees must hold ring-identical payloads —
// the strongest form of the "batch = sequence" equivalence.
template <RingType R>
void ExpectViewsIdentical(const ViewTree<R>& a, const ViewTree<R>& b) {
  for (size_t n = 0; n < a.plan().nodes().size(); ++n) {
    const auto& wa = a.NodeW(static_cast<int>(n));
    const auto& wb = b.NodeW(static_cast<int>(n));
    ASSERT_EQ(wa.size(), wb.size()) << "W of node " << n;
    for (const auto& e : wa) ASSERT_EQ(wb.Payload(e.key), e.value);
    const Relation<R>& ma = a.NodeM(static_cast<int>(n));
    const Relation<R>& mb = b.NodeM(static_cast<int>(n));
    ASSERT_EQ(ma.size(), mb.size()) << "M of node " << n;
    for (const auto& e : ma) ASSERT_EQ(mb.Payload(e.key), e.value);
  }
}

// Applies random batches of `draw`n deltas to two identically-built trees,
// node-at-a-time on one and per-tuple on the other, checking every view
// after every batch.
template <RingType R, typename DrawFn>
void CheckBatchVsSequential(const Query& q, const VariableOrder* vo,
                            DrawFn&& draw, uint64_t seed) {
  auto make = [&] {
    auto t = vo == nullptr ? ViewTree<R>::Make(q) : ViewTree<R>::Make(q, *vo);
    EXPECT_TRUE(t.ok());
    return *std::move(t);
  };
  ViewTree<R> batched = make();
  ViewTree<R> sequential = make();
  Rng rng(seed);
  for (size_t size : {1u, 7u, 40u, 200u}) {
    std::vector<typename ViewTree<R>::BatchEntry> batch;
    for (size_t i = 0; i < size; ++i) batch.push_back(draw(rng));
    batched.ApplyBatch(
        std::span<const typename ViewTree<R>::BatchEntry>(batch));
    sequential.ApplyBatchPerTuple(batch);
    ExpectViewsIdentical(batched, sequential);
  }
}

TEST(BatchTest, BatchesCommute) {
  // Apply the same batch in many random orders; every view must end
  // identical — the ring-payload commutativity the paper §2 highlights.
  Rng rng(4);
  std::vector<ViewTree<IntRing>::BatchEntry> batch;
  for (int i = 0; i < 120; ++i) {
    batch.push_back({rng.Uniform(2),
                     Tuple{rng.UniformInt(0, 5), rng.UniformInt(0, 5)},
                     rng.Chance(0.4) ? -1 : 2});
  }
  auto reference = ViewTree<IntRing>::Make(TheQuery());
  ASSERT_TRUE(reference.ok());
  reference->ApplyBatch(batch);
  for (int perm = 0; perm < 5; ++perm) {
    auto shuffled = batch;
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.Uniform(i)]);
    }
    auto tree = ViewTree<IntRing>::Make(TheQuery());
    ASSERT_TRUE(tree.ok());
    tree->ApplyBatch(shuffled);
    EXPECT_EQ(tree->Aggregate(), reference->Aggregate());
    for (size_t n = 0; n < tree->plan().nodes().size(); ++n) {
      const auto& wa = tree->NodeW(static_cast<int>(n));
      const auto& wb = reference->NodeW(static_cast<int>(n));
      ASSERT_EQ(wa.size(), wb.size()) << "perm " << perm;
      for (const auto& e : wa) ASSERT_EQ(wb.Payload(e.key), e.value);
    }
  }
}

TEST(BatchTest, BatchEqualsSequentialIntRing) {
  CheckBatchVsSequential<IntRing>(
      TheQuery(), nullptr,
      [](Rng& rng) {
        return ViewTree<IntRing>::BatchEntry{
            rng.Uniform(2), Tuple{rng.UniformInt(0, 5), rng.UniformInt(0, 5)},
            rng.Chance(0.4) ? -1 : 2};
      },
      11);
}

TEST(BatchTest, BatchEqualsSequentialProductRing) {
  // Count and doubled-count maintained in one pass.
  using PR = ProductRing<IntRing, IntRing>;
  CheckBatchVsSequential<PR>(
      TheQuery(), nullptr,
      [](Rng& rng) {
        int64_t m = rng.Chance(0.4) ? -1 : 1;
        return ViewTree<PR>::BatchEntry{
            rng.Uniform(2), Tuple{rng.UniformInt(0, 5), rng.UniformInt(0, 5)},
            {m, 2 * m}};
      },
      12);
}

TEST(BatchTest, BatchEqualsSequentialCovarRing) {
  // Degree-2 statistics payloads: lifted feature values and retractions.
  using CR = CovarRing<2>;
  CheckBatchVsSequential<CR>(
      TheQuery(), nullptr,
      [](Rng& rng) {
        CR::Value v = CR::Lift(rng.Uniform(2),
                               static_cast<double>(rng.UniformInt(1, 9)));
        return ViewTree<CR>::BatchEntry{
            rng.Uniform(2), Tuple{rng.UniformInt(0, 5), rng.UniformInt(0, 5)},
            rng.Chance(0.3) ? CR::Neg(v) : v};
      },
      13);
}

TEST(BatchTest, BatchEqualsSequentialNonQHierarchical) {
  // The fan-out query under a path order: a merged S(b) delta feeds one
  // program run where the per-tuple loop runs many; views must agree.
  Query q = FanoutQuery();
  auto vo = VariableOrder::FromPath(q, {A, B});
  ASSERT_TRUE(vo.ok());
  CheckBatchVsSequential<IntRing>(
      q, &*vo,
      [](Rng& rng) {
        if (rng.Chance(0.5)) {
          return ViewTree<IntRing>::BatchEntry{
              0, Tuple{rng.UniformInt(0, 20), rng.UniformInt(0, 3)}, 1};
        }
        // Hot S keys: guaranteed duplicates inside every sizable batch.
        return ViewTree<IntRing>::BatchEntry{
            1, Tuple{rng.UniformInt(0, 3)}, rng.Chance(0.4) ? -1 : 1};
      },
      14);
}

TEST(BatchTest, BatchEqualsSequentialTriangle) {
  // Cyclic query: every atom anchors below the others' variables, so the
  // node-at-a-time pass exercises multi-atom nodes and child deferral.
  Query q = TriangleQuery();
  auto vo = VariableOrder::FromPath(q, {A, B, C});
  ASSERT_TRUE(vo.ok());
  CheckBatchVsSequential<IntRing>(
      q, &*vo,
      [](Rng& rng) {
        return ViewTree<IntRing>::BatchEntry{
            rng.Uniform(3), Tuple{rng.UniformInt(0, 4), rng.UniformInt(0, 4)},
            rng.Chance(0.4) ? -1 : 1};
      },
      15);
}

TEST(BatchTest, SelfCancellingBatchIsNoOp) {
  // A batch whose deltas sum to zero per tuple merges to nothing and must
  // leave every view exactly as it was.
  auto make = [] {
    auto t = ViewTree<IntRing>::Make(TheQuery());
    EXPECT_TRUE(t.ok());
    Rng rng(16);
    for (int i = 0; i < 100; ++i) {
      t->UpdateAtom(rng.Uniform(2),
                    Tuple{rng.UniformInt(0, 5), rng.UniformInt(0, 5)}, 1);
    }
    return *std::move(t);
  };
  ViewTree<IntRing> tree = make();
  ViewTree<IntRing> untouched = make();
  Rng rng(17);
  std::vector<ViewTree<IntRing>::BatchEntry> batch;
  for (int i = 0; i < 50; ++i) {
    ViewTree<IntRing>::BatchEntry e{
        rng.Uniform(2), Tuple{rng.UniformInt(0, 5), rng.UniformInt(0, 5)},
        rng.UniformInt(1, 3)};
    ViewTree<IntRing>::BatchEntry neg = e;
    neg.delta = -neg.delta;
    batch.push_back(e);
    batch.push_back(neg);
  }
  tree.ApplyBatch(std::span<const ViewTree<IntRing>::BatchEntry>(batch));
  ExpectViewsIdentical(tree, untouched);
  // And per-tuple application of the same batch agrees too.
  ViewTree<IntRing> sequential = make();
  sequential.ApplyBatchPerTuple(batch);
  ExpectViewsIdentical(sequential, untouched);
}

TEST(DeltaEnumTest, ReportsAppearedChangedDisappeared) {
  auto tree = ViewTree<IntRing>::Make(TheQuery());
  ASSERT_TRUE(tree.ok());
  tree->Update("R", Tuple{1, 10}, 1);
  tree->Update("S", Tuple{1, 20}, 1);

  // Appearance: inserting S(1,21) creates (1,10,21).
  std::map<Tuple, std::pair<int64_t, int64_t>> deltas;
  tree->UpdateAtomWithDeltaEnum(
      1, Tuple{1, 21}, 1,
      [&](const Tuple& t, const int64_t& before, const int64_t& now) {
        deltas[t] = {before, now};
      });
  ASSERT_EQ(deltas.size(), 1u);
  auto [b0, n0] = deltas.begin()->second;
  EXPECT_EQ(b0, 0);
  EXPECT_EQ(n0, 1);

  // Payload change: bumping R(1,10) multiplies both outputs.
  deltas.clear();
  tree->UpdateAtomWithDeltaEnum(
      0, Tuple{1, 10}, 2,
      [&](const Tuple& t, const int64_t& before, const int64_t& now) {
        deltas[t] = {before, now};
      });
  EXPECT_EQ(deltas.size(), 2u);
  for (const auto& [t, d] : deltas) {
    EXPECT_EQ(d.first, 1);
    EXPECT_EQ(d.second, 3);
  }

  // Disappearance: deleting S(1,20) removes one tuple.
  deltas.clear();
  tree->UpdateAtomWithDeltaEnum(
      1, Tuple{1, 20}, -1,
      [&](const Tuple& t, const int64_t& before, const int64_t& now) {
        deltas[t] = {before, now};
      });
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas.begin()->second.first, 3);
  EXPECT_EQ(deltas.begin()->second.second, 0);

  // No-op update on an unrelated key reports nothing.
  deltas.clear();
  tree->UpdateAtomWithDeltaEnum(
      0, Tuple{9, 9}, 1,
      [&](const Tuple& t, const int64_t& before, const int64_t& now) {
        deltas[t] = {before, now};
      });
  EXPECT_TRUE(deltas.empty());
}

TEST(DeltaEnumTest, DeltasAccumulateToFullOutput) {
  // Summing all reported deltas over a random stream reconstructs the
  // final output exactly.
  auto tree = ViewTree<IntRing>::Make(TheQuery());
  ASSERT_TRUE(tree.ok());
  Rng rng(6);
  std::map<Tuple, int64_t> accumulated;
  std::vector<std::pair<size_t, Tuple>> live;
  for (int step = 0; step < 600; ++step) {
    size_t atom;
    Tuple t;
    int64_t m;
    if (!live.empty() && rng.Chance(0.3)) {
      size_t i = rng.Uniform(live.size());
      atom = live[i].first;
      t = live[i].second;
      m = -1;
      live[i] = live.back();
      live.pop_back();
    } else {
      atom = rng.Uniform(2);
      t = Tuple{rng.UniformInt(0, 6), rng.UniformInt(0, 6)};
      m = 1;
      live.emplace_back(atom, t);
    }
    tree->UpdateAtomWithDeltaEnum(
        atom, t, m,
        [&](const Tuple& out, const int64_t& before, const int64_t& now) {
          accumulated[out] += now - before;
          if (accumulated[out] == 0) accumulated.erase(out);
        });
  }
  std::map<Tuple, int64_t> full;
  for (ViewTreeEnumerator<IntRing> it(*tree); it.Valid(); it.Next()) {
    full[it.tuple()] = it.payload();
  }
  EXPECT_EQ(accumulated, full);
}

}  // namespace
}  // namespace incr
