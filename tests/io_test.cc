// Relation/database serialization round-trip tests.
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "incr/data/io.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

TEST(IoTest, RelationRoundTrip) {
  Relation<IntRing> r(Schema{0, 1});
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    r.Apply(Tuple{rng.UniformInt(0, 50), rng.UniformInt(0, 50)},
            rng.UniformInt(-3, 3));
  }
  std::ostringstream out;
  WriteRelation(out, "R", r);
  Relation<IntRing> back(Schema{0, 1});
  std::istringstream in(out.str());
  ASSERT_TRUE(ReadRelation(in, "R", &back).ok());
  ASSERT_EQ(back.size(), r.size());
  for (const auto& e : r) EXPECT_EQ(back.Payload(e.key), e.value);
}

TEST(IoTest, DatabaseRoundTripWithCommentsAndBlanks) {
  Database<IntRing> db;
  RelId rid = db.AddRelation("R", Schema{0, 1});
  RelId sid = db.AddRelation("S", Schema{2});
  db.relation(rid).Apply(Tuple{1, 2}, 3);
  db.relation(rid).Apply(Tuple{4, 5}, -1);
  db.relation(sid).Apply(Tuple{9}, 7);

  std::ostringstream out;
  out << "# snapshot\n\n";
  WriteDatabase(out, db);

  Database<IntRing> back;
  back.AddRelation("R", Schema{0, 1});
  back.AddRelation("S", Schema{2});
  std::istringstream in(out.str());
  ASSERT_TRUE(ReadDatabase(in, &back).ok());
  EXPECT_EQ(back.Find("R")->Payload(Tuple{1, 2}), 3);
  EXPECT_EQ(back.Find("R")->Payload(Tuple{4, 5}), -1);
  EXPECT_EQ(back.Find("S")->Payload(Tuple{9}), 7);
  EXPECT_EQ(back.TotalSize(), db.TotalSize());
}

TEST(IoTest, Errors) {
  Relation<IntRing> r(Schema{0, 1});
  {
    std::istringstream in("");
    EXPECT_FALSE(ReadRelation(in, "R", &r).ok());
  }
  {
    std::istringstream in("relation S 2\nend\n");
    EXPECT_FALSE(ReadRelation(in, "R", &r).ok());  // wrong name
  }
  {
    std::istringstream in("relation R 3\nend\n");
    EXPECT_FALSE(ReadRelation(in, "R", &r).ok());  // arity mismatch
  }
  {
    std::istringstream in("relation R 2\n1 2 3\n");  // missing end
    EXPECT_FALSE(ReadRelation(in, "R", &r).ok());
  }
  {
    std::istringstream in("relation R 2\n1 nope 3\nend\n");
    EXPECT_FALSE(ReadRelation(in, "R", &r).ok());  // malformed row
  }
  {
    Database<IntRing> db;
    db.AddRelation("R", Schema{0});
    std::istringstream in("relation X 1\nend\n");
    EXPECT_FALSE(ReadDatabase(in, &db).ok());  // unknown relation
  }
}

TEST(IoTest, FileRoundTripAndLineNumberedErrors) {
  const std::string path = ::testing::TempDir() + "io_test_db.txt";
  Database<IntRing> db;
  RelId rid = db.AddRelation("R", Schema{0, 1});
  db.relation(rid).Apply(Tuple{1, 2}, 3);
  ASSERT_TRUE(WriteDatabaseFile(path, db).ok());

  Database<IntRing> back;
  back.AddRelation("R", Schema{0, 1});
  ASSERT_TRUE(ReadDatabaseFile(path, &back).ok());
  EXPECT_EQ(back.Find("R")->Payload(Tuple{1, 2}), 3);

  // A missing file is NotFound, not a crash or a silent empty read.
  Database<IntRing> empty;
  EXPECT_EQ(ReadDatabaseFile(path + ".nope", &empty).code(),
            StatusCode::kNotFound);

  // Parse errors carry "<path>: line <n>" — the malformed row below is on
  // line 4 (comment + header + good row before it).
  {
    std::ofstream out(path);
    out << "# snapshot\nrelation R 2\n1 2 3\n1 nope 3\nend\n";
  }
  Database<IntRing> bad;
  bad.AddRelation("R", Schema{0, 1});
  Status st = ReadDatabaseFile(path, &bad);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find(path), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("line 4"), std::string::npos) << st.message();
}

}  // namespace
}  // namespace incr
