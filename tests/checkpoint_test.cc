// Snapshot file format tests: round trips (including ring payload blobs for
// every ring serde), atomicity of rewrite, and rejection of damaged files.
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "incr/ring/bool_semiring.h"
#include "incr/ring/covar_ring.h"
#include "incr/ring/int_ring.h"
#include "incr/ring/minplus_semiring.h"
#include "incr/ring/product_ring.h"
#include "incr/ring/provenance.h"
#include "incr/store/checkpoint.h"
#include "incr/store/serde.h"
#include "incr/util/rng.h"

namespace incr::store {
namespace {

std::string TestPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "ckpt_test_" + name + ".ickp";
  std::remove(path.c_str());
  return path;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(CheckpointTest, RoundTrip) {
  const std::string path = TestPath("roundtrip");
  SnapshotData snap;
  snap.ring_name = "int";
  snap.lsn = 12345;
  snap.dict_blob = std::string("\x00\x01\x02 dict", 8);
  snap.state = std::string(10000, '\x7f');
  snap.state[777] = '\x00';
  ASSERT_TRUE(WriteSnapshotFile(path, snap).ok());

  auto back = ReadSnapshotFile(path);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(back->ring_name, "int");
  EXPECT_EQ(back->lsn, 12345u);
  EXPECT_EQ(back->dict_blob, snap.dict_blob);
  EXPECT_EQ(back->state, snap.state);
}

TEST(CheckpointTest, EmptyBlobsRoundTrip) {
  const std::string path = TestPath("empty");
  SnapshotData snap;
  snap.ring_name = "bool";
  ASSERT_TRUE(WriteSnapshotFile(path, snap).ok());
  auto back = ReadSnapshotFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->lsn, 0u);
  EXPECT_TRUE(back->dict_blob.empty());
  EXPECT_TRUE(back->state.empty());
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadSnapshotFile(TestPath("missing")).status().code(),
            StatusCode::kNotFound);
}

TEST(CheckpointTest, RewriteReplacesAtomically) {
  const std::string path = TestPath("rewrite");
  SnapshotData snap;
  snap.ring_name = "int";
  snap.lsn = 1;
  snap.state = "old";
  ASSERT_TRUE(WriteSnapshotFile(path, snap).ok());
  snap.lsn = 2;
  snap.state = "new";
  ASSERT_TRUE(WriteSnapshotFile(path, snap).ok());
  auto back = ReadSnapshotFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->lsn, 2u);
  EXPECT_EQ(back->state, "new");
}

TEST(CheckpointTest, AnySingleByteFlipIsRejected) {
  const std::string path = TestPath("flip");
  SnapshotData snap;
  snap.ring_name = "int";
  snap.lsn = 99;
  snap.dict_blob = "dictionary";
  snap.state = std::string(500, 's');
  ASSERT_TRUE(WriteSnapshotFile(path, snap).ok());
  const std::string good = FileBytes(path);
  Rng rng(3);
  for (int trial = 0; trial < 128; ++trial) {
    std::string bad = good;
    bad[rng.Uniform(bad.size())] ^= 0x40;
    WriteBytes(path, bad);
    EXPECT_FALSE(ReadSnapshotFile(path).ok());
  }
}

TEST(CheckpointTest, TruncationIsRejected) {
  const std::string path = TestPath("trunc");
  SnapshotData snap;
  snap.ring_name = "int";
  snap.state = std::string(100, 's');
  ASSERT_TRUE(WriteSnapshotFile(path, snap).ok());
  const std::string good = FileBytes(path);
  for (size_t cut = 0; cut < good.size(); ++cut) {
    WriteBytes(path, good.substr(0, cut));
    EXPECT_FALSE(ReadSnapshotFile(path).ok()) << "cut=" << cut;
  }
}

TEST(CheckpointTest, TrailingGarbageIsRejected) {
  const std::string path = TestPath("trailing");
  SnapshotData snap;
  snap.ring_name = "int";
  snap.state = "state";
  ASSERT_TRUE(WriteSnapshotFile(path, snap).ok());
  WriteBytes(path, FileBytes(path) + "garbage");
  EXPECT_FALSE(ReadSnapshotFile(path).ok());
}

// The snapshot state blob is ring-payload bytes produced by PayloadSerde;
// check every ring's serde round-trips exactly (doubles bit-for-bit).
template <RingType R>
void CheckPayloadRoundTrip(const typename R::Value& v) {
  ByteWriter w;
  PayloadSerde<R>::Write(w, v);
  ByteReader r(w.data());
  typename R::Value back{};
  ASSERT_TRUE(PayloadSerde<R>::Read(r, &back));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(back == v) << "ring " << RingSerdeName<R>();
}

TEST(CheckpointTest, PayloadSerdeCoversAllRings) {
  CheckPayloadRoundTrip<IntRing>(-42);
  CheckPayloadRoundTrip<RealRing>(0.1 + 0.2);  // not exactly representable
  CheckPayloadRoundTrip<BoolSemiring>(true);
  CheckPayloadRoundTrip<MinPlusSemiring>(int64_t{7});
  CheckPayloadRoundTrip<ProductRing<IntRing, RealRing>>({3, 2.5e-300});
  CovarValue<2> cv;
  cv.count = 5;
  cv.sum = {1.25, -0.1};
  cv.prod = {0.3, 0.7, 0.7, 1e300};
  CheckPayloadRoundTrip<CovarRing<2>>(cv);
  Polynomial p = Polynomial::Var(3);
  p = ProvenanceRing::Add(p, ProvenanceRing::Mul(Polynomial::Var(1),
                                                 Polynomial::Var(2)));
  CheckPayloadRoundTrip<ProvenanceRing>(p);
}

}  // namespace
}  // namespace incr::store
