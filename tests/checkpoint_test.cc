// Snapshot file format tests: round trips (including ring payload blobs for
// every ring serde), atomicity of rewrite, rejection of damaged files, and
// Checkpoint() under concurrent snapshot readers (the written state must be
// a published epoch, never a mid-build hybrid).
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "incr/engines/durable_engine.h"
#include "incr/engines/engine.h"
#include "incr/ring/bool_semiring.h"
#include "incr/ring/covar_ring.h"
#include "incr/ring/int_ring.h"
#include "incr/ring/minplus_semiring.h"
#include "incr/ring/product_ring.h"
#include "incr/ring/provenance.h"
#include "incr/store/checkpoint.h"
#include "incr/store/recover.h"
#include "incr/store/serde.h"
#include "incr/util/rng.h"

namespace incr::store {
namespace {

std::string TestPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "ckpt_test_" + name + ".ickp";
  std::remove(path.c_str());
  return path;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(CheckpointTest, RoundTrip) {
  const std::string path = TestPath("roundtrip");
  SnapshotData snap;
  snap.ring_name = "int";
  snap.lsn = 12345;
  snap.dict_blob = std::string("\x00\x01\x02 dict", 8);
  snap.state = std::string(10000, '\x7f');
  snap.state[777] = '\x00';
  ASSERT_TRUE(WriteSnapshotFile(path, snap).ok());

  auto back = ReadSnapshotFile(path);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(back->ring_name, "int");
  EXPECT_EQ(back->lsn, 12345u);
  EXPECT_EQ(back->dict_blob, snap.dict_blob);
  EXPECT_EQ(back->state, snap.state);
}

TEST(CheckpointTest, EmptyBlobsRoundTrip) {
  const std::string path = TestPath("empty");
  SnapshotData snap;
  snap.ring_name = "bool";
  ASSERT_TRUE(WriteSnapshotFile(path, snap).ok());
  auto back = ReadSnapshotFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->lsn, 0u);
  EXPECT_TRUE(back->dict_blob.empty());
  EXPECT_TRUE(back->state.empty());
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadSnapshotFile(TestPath("missing")).status().code(),
            StatusCode::kNotFound);
}

TEST(CheckpointTest, RewriteReplacesAtomically) {
  const std::string path = TestPath("rewrite");
  SnapshotData snap;
  snap.ring_name = "int";
  snap.lsn = 1;
  snap.state = "old";
  ASSERT_TRUE(WriteSnapshotFile(path, snap).ok());
  snap.lsn = 2;
  snap.state = "new";
  ASSERT_TRUE(WriteSnapshotFile(path, snap).ok());
  auto back = ReadSnapshotFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->lsn, 2u);
  EXPECT_EQ(back->state, "new");
}

TEST(CheckpointTest, AnySingleByteFlipIsRejected) {
  const std::string path = TestPath("flip");
  SnapshotData snap;
  snap.ring_name = "int";
  snap.lsn = 99;
  snap.dict_blob = "dictionary";
  snap.state = std::string(500, 's');
  ASSERT_TRUE(WriteSnapshotFile(path, snap).ok());
  const std::string good = FileBytes(path);
  Rng rng(3);
  for (int trial = 0; trial < 128; ++trial) {
    std::string bad = good;
    bad[rng.Uniform(bad.size())] ^= 0x40;
    WriteBytes(path, bad);
    EXPECT_FALSE(ReadSnapshotFile(path).ok());
  }
}

TEST(CheckpointTest, TruncationIsRejected) {
  const std::string path = TestPath("trunc");
  SnapshotData snap;
  snap.ring_name = "int";
  snap.state = std::string(100, 's');
  ASSERT_TRUE(WriteSnapshotFile(path, snap).ok());
  const std::string good = FileBytes(path);
  for (size_t cut = 0; cut < good.size(); ++cut) {
    WriteBytes(path, good.substr(0, cut));
    EXPECT_FALSE(ReadSnapshotFile(path).ok()) << "cut=" << cut;
  }
}

TEST(CheckpointTest, TrailingGarbageIsRejected) {
  const std::string path = TestPath("trailing");
  SnapshotData snap;
  snap.ring_name = "int";
  snap.state = "state";
  ASSERT_TRUE(WriteSnapshotFile(path, snap).ok());
  WriteBytes(path, FileBytes(path) + "garbage");
  EXPECT_FALSE(ReadSnapshotFile(path).ok());
}

// The snapshot state blob is ring-payload bytes produced by PayloadSerde;
// check every ring's serde round-trips exactly (doubles bit-for-bit).
template <RingType R>
void CheckPayloadRoundTrip(const typename R::Value& v) {
  ByteWriter w;
  PayloadSerde<R>::Write(w, v);
  ByteReader r(w.data());
  typename R::Value back{};
  ASSERT_TRUE(PayloadSerde<R>::Read(r, &back));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(back == v) << "ring " << RingSerdeName<R>();
}

TEST(CheckpointTest, PayloadSerdeCoversAllRings) {
  CheckPayloadRoundTrip<IntRing>(-42);
  CheckPayloadRoundTrip<RealRing>(0.1 + 0.2);  // not exactly representable
  CheckPayloadRoundTrip<BoolSemiring>(true);
  CheckPayloadRoundTrip<MinPlusSemiring>(int64_t{7});
  CheckPayloadRoundTrip<ProductRing<IntRing, RealRing>>({3, 2.5e-300});
  CovarValue<2> cv;
  cv.count = 5;
  cv.sum = {1.25, -0.1};
  cv.prod = {0.3, 0.7, 0.7, 1e300};
  CheckPayloadRoundTrip<CovarRing<2>>(cv);
  Polynomial p = Polynomial::Var(3);
  p = ProvenanceRing::Add(p, ProvenanceRing::Mul(Polynomial::Var(1),
                                                 Polynomial::Var(2)));
  CheckPayloadRoundTrip<ProvenanceRing>(p);
}

// ----------------------------------------------------------------------
// Checkpoint() while snapshot readers are live.
//
// The maintainer periodically checkpoints a durable engine whose inner
// view tree serves snapshot reads, with reader threads enumerating and one
// handle held across the whole run. Every written snapshot must serialize
// a published epoch: its state bytes equal those of an identically
// configured shadow engine that applied the same batch prefix. A
// checkpoint that raced the version build would serialize a hybrid no
// sequential execution can produce.

ViewTreeEngine<IntRing> MakeServeEngine() {
  enum : Var { A = 0, B = 1, C = 2 };
  Query q("Q", Schema{A, B, C},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{A, C}}});
  auto tree = ViewTree<IntRing>::Make(q);
  INCR_CHECK(tree.ok());
  return ViewTreeEngine<IntRing>(*std::move(tree));
}

std::string EngineDumpBytes(IvmEngine<IntRing>& e) {
  ByteWriter w;
  Status st = e.DumpState(w);
  EXPECT_TRUE(st.ok()) << st.message();
  return w.Take();
}

TEST(CheckpointTest, CheckpointUnderConcurrentSnapshotReaders) {
  const std::string dir = ::testing::TempDir() + "ckpt_concurrent";
  ASSERT_TRUE(EnsureDir(dir).ok());
  std::remove(WalPath(dir).c_str());
  std::remove(SnapshotPath(dir).c_str());

  constexpr size_t kBatches = 200;
  constexpr size_t kBatch = 20;
  constexpr size_t kCheckpointEvery = 40;

  EngineOptions opts;
  opts.durability_dir = dir;
  opts.fsync = false;
  opts.snapshot_reads = true;
  // One handle is held across all batches, so every epoch published during
  // the run stays retained; size the cap accordingly.
  opts.max_retained_epochs = kBatches + 16;

  auto live = DurableEngine<IntRing>::Open(
      std::make_unique<ViewTreeEngine<IntRing>>(MakeServeEngine()), opts,
      nullptr);
  ASSERT_TRUE(live.ok()) << live.status().message();
  auto* vt = dynamic_cast<ViewTreeEngine<IntRing>*>(&(*live)->inner());
  ASSERT_NE(vt, nullptr);
  ASSERT_TRUE(vt->tree().snapshots_enabled());

  ViewTreeEngine<IntRing> shadow = MakeServeEngine();
  EngineOptions shadow_opts;
  shadow_opts.snapshot_reads = true;
  shadow_opts.max_retained_epochs = opts.max_retained_epochs;
  shadow.Configure(shadow_opts);

  // Deterministic small-domain churn keeps every retained version tiny.
  Rng rng(77);
  std::vector<Delta<IntRing>> updates;
  updates.reserve(kBatches * kBatch);
  for (size_t i = 0; i < kBatches * kBatch; ++i) {
    Delta<IntRing> d;
    d.relation.assign(rng.Chance(0.5) ? "R" : "S", 1);
    d.tuple = Tuple{rng.UniformInt(0, 7), rng.UniformInt(0, 7)};
    d.delta = rng.Chance(0.7) ? 1 : -1;
    updates.push_back(std::move(d));
  }

  // A handle pinned before any load, held until after the joins.
  ViewTreeSnapshot<IntRing> held = vt->tree().Snapshot();
  const uint64_t pinned_epoch = held.epoch();
  const int64_t pinned_agg = held.Aggregate();

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        (*live)->EnumerateSnapshot(nullptr);
      }
    });
  }

  for (size_t b = 0; b < kBatches; ++b) {
    std::span<const Delta<IntRing>> span(updates.data() + b * kBatch, kBatch);
    (*live)->ApplyBatch(span);
    shadow.ApplyBatch(span);
    if ((b + 1) % kCheckpointEvery == 0) {
      ASSERT_TRUE((*live)->Checkpoint().ok()) << "batch " << b;
      auto snap = ReadSnapshotFile(SnapshotPath(dir));
      ASSERT_TRUE(snap.ok()) << snap.status().message();
      // The checkpointed state is exactly the published epoch after b+1
      // batches — bit-identical to the shadow's serialization.
      EXPECT_EQ(snap->state, EngineDumpBytes(shadow)) << "batch " << b;
    }
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(held.epoch(), pinned_epoch);
  EXPECT_EQ(held.Aggregate(), pinned_agg);
  EXPECT_EQ(vt->tree().published_epoch(), pinned_epoch + kBatches);
  EXPECT_EQ(EngineDumpBytes(**live), EngineDumpBytes(shadow));
}

}  // namespace
}  // namespace incr::store
