// Cross-engine differential stress: one shared random scenario drives
// every triangle maintainer, the generic view tree, LFTJ, and the
// k-clique counter side by side; all counts must agree at every
// checkpoint. Catches integration drift that per-module suites can miss.
#include <gtest/gtest.h>

#include "incr/core/view_tree.h"
#include "incr/engines/join.h"
#include "incr/engines/leapfrog.h"
#include "incr/ivme/kclique.h"
#include "incr/ivme/triangle.h"
#include "incr/query/properties.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"
#include "incr/workload/graph.h"

namespace incr {
namespace {

enum : Var { A = 0, B = 1, C = 2 };

TEST(StressTest, TriangleCountSixWays) {
  // The same update stream applied to: naive, delta, materialized,
  // IVMe(0.3), IVMe(0.7), a generic view tree over a path order, and
  // recomputation via LFTJ. Seven independent code paths, one number.
  Query q("tri", Schema{},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
           Atom{"T", Schema{C, A}}});
  auto vo = VariableOrder::FromPath(q, {A, B, C});
  ASSERT_TRUE(vo.ok());
  auto tree = ViewTree<IntRing>::Make(q, *std::move(vo));
  ASSERT_TRUE(tree.ok());

  NaiveTriangleCounter naive;
  DeltaTriangleCounter delta;
  MaterializedTriangleCounter mat;
  IvmEpsTriangleCounter eps3(0.3);
  IvmEpsTriangleCounter eps7(0.7);

  GraphStream stream(/*n_vertices=*/60, /*s=*/1.1, /*window=*/900,
                     /*seed=*/77);
  for (int step = 1; step <= 6000; ++step) {
    auto e = stream.Next();
    auto rel = static_cast<TriangleRel>(step % 3);
    naive.Update(rel, e.src, e.dst, e.delta);
    delta.Update(rel, e.src, e.dst, e.delta);
    mat.Update(rel, e.src, e.dst, e.delta);
    eps3.Update(rel, e.src, e.dst, e.delta);
    eps7.Update(rel, e.src, e.dst, e.delta);
    size_t atom = static_cast<size_t>(rel);
    tree->UpdateAtom(atom, Tuple{e.src, e.dst}, e.delta);

    int64_t expect = delta.Count();
    ASSERT_EQ(mat.Count(), expect) << step;
    ASSERT_EQ(eps3.Count(), expect) << step;
    ASSERT_EQ(eps7.Count(), expect) << step;
    ASSERT_EQ(tree->Aggregate(), expect) << step;
    if (step % 617 == 0) {
      ASSERT_EQ(naive.Count(), expect) << step;
      ASSERT_TRUE(eps3.InvariantsHold()) << step;
      ASSERT_TRUE(eps7.InvariantsHold()) << step;
      std::vector<const Relation<IntRing>*> rels;
      for (size_t a = 0; a < 3; ++a) rels.push_back(&tree->AtomRelation(a));
      ASSERT_EQ(LeapfrogCount(q, rels, {A, B, C}), expect) << step;
    }
  }
}

TEST(StressTest, UndirectedTriangleVsKClique) {
  // For a simple undirected graph (no self-loops, 0/1 edges), the directed
  // 3-cycle count over the symmetrized edge relation is 6x the undirected
  // triangle count — tying the TriangleCounter family to KCliqueCounter.
  KCliqueCounter cliques(3);
  IvmEpsTriangleCounter cycles(0.5);
  Rng rng(5);
  DenseMap<Tuple, char, TupleHash, TupleEq> present;
  for (int step = 0; step < 2500; ++step) {
    Value u = rng.UniformInt(0, 25);
    Value v = rng.UniformInt(0, 25);
    if (u == v) continue;
    Tuple key{std::min(u, v), std::max(u, v)};
    bool want = rng.Chance(0.55);
    bool has = present.Find(key) != nullptr;
    if (want == has) continue;
    int64_t d = want ? 1 : -1;
    if (want) {
      present.GetOrInsert(key, 1);
    } else {
      present.Erase(key);
    }
    cliques.SetEdge(u, v, want);
    for (auto [x, y] : {std::pair{u, v}, std::pair{v, u}}) {
      cycles.Update(TriangleRel::kR, x, y, d);
      cycles.Update(TriangleRel::kS, x, y, d);
      cycles.Update(TriangleRel::kT, x, y, d);
    }
    if (step % 203 == 0) {
      ASSERT_EQ(cycles.Count(), 6 * cliques.Count()) << step;
    }
  }
  EXPECT_EQ(cycles.Count(), 6 * cliques.Count());
}

TEST(StressTest, QHierarchicalLongHaul) {
  // A deeper q-hierarchical query under a long valid stream, checked
  // against the oracle at sparse checkpoints.
  enum : Var { W = 3, X = 4, Y = 5, Z = 6 };
  Query q("deep", Schema{W, X, Y, Z},
          {Atom{"R", Schema{W, X}}, Atom{"S", Schema{W, X, Y}},
           Atom{"T", Schema{W, Z}}, Atom{"U", Schema{W}}});
  ASSERT_TRUE(IsQHierarchical(q));
  auto tree = ViewTree<IntRing>::Make(q);
  ASSERT_TRUE(tree.ok());
  Rng rng(8);
  std::vector<std::pair<size_t, Tuple>> live;
  for (int step = 0; step < 20000; ++step) {
    if (!live.empty() && rng.Chance(0.4)) {
      size_t i = rng.Uniform(live.size());
      tree->UpdateAtom(live[i].first, live[i].second, -1);
      live[i] = live.back();
      live.pop_back();
    } else {
      size_t atom = rng.Uniform(4);
      Tuple t;
      for (size_t k = 0; k < q.atoms()[atom].schema.size(); ++k) {
        t.push_back(rng.UniformInt(0, 4));
      }
      tree->UpdateAtom(atom, t, 1);
      live.emplace_back(atom, t);
    }
    if (step % 4999 != 0) continue;
    std::vector<const Relation<IntRing>*> rels;
    for (size_t a = 0; a < 4; ++a) rels.push_back(&tree->AtomRelation(a));
    auto oracle = EvaluateQuery<IntRing>(q, rels);
    auto pos = ProjectionPositions(tree->OutputSchema(), q.free());
    size_t n = 0;
    for (ViewTreeEnumerator<IntRing> it(*tree); it.Valid(); it.Next()) {
      ASSERT_EQ(oracle.Payload(ProjectTuple(it.tuple(), pos)), it.payload());
      ++n;
    }
    ASSERT_EQ(n, oracle.size()) << step;
  }
}

TEST(StressTest, ParallelBatchEquivalenceLongHaul) {
  // The same random insert/delete stream, chopped into random-size batches,
  // applied three ways: per-tuple, sequential node-at-a-time, and
  // shard-parallel on 5 threads. Every view of all three trees must agree
  // after every batch; the oracle checks the output at sparse checkpoints.
  enum : Var { W = 3, X = 4, Y = 5, Z = 6 };
  Query q("deep", Schema{W, X, Y, Z},
          {Atom{"R", Schema{W, X}}, Atom{"S", Schema{W, X, Y}},
           Atom{"T", Schema{W, Z}}, Atom{"U", Schema{W}}});
  auto make = [&] {
    auto t = ViewTree<IntRing>::Make(q);
    EXPECT_TRUE(t.ok());
    return *std::move(t);
  };
  ViewTree<IntRing> per_tuple = make();
  ViewTree<IntRing> sequential = make();
  ViewTree<IntRing> parallel = make();
  parallel.SetThreads(5);
  Rng rng(9);
  std::vector<std::pair<size_t, Tuple>> live;
  for (int round = 0; round < 40; ++round) {
    std::vector<ViewTree<IntRing>::BatchEntry> batch;
    size_t size = rng.UniformInt(1, 400);
    for (size_t i = 0; i < size; ++i) {
      if (!live.empty() && rng.Chance(0.4)) {
        size_t j = rng.Uniform(live.size());
        batch.push_back({live[j].first, live[j].second, -1});
        live[j] = live.back();
        live.pop_back();
      } else {
        size_t atom = rng.Uniform(4);
        Tuple t;
        for (size_t k = 0; k < q.atoms()[atom].schema.size(); ++k) {
          t.push_back(rng.UniformInt(0, 4));
        }
        batch.push_back({atom, t, 1});
        live.emplace_back(atom, t);
      }
    }
    std::span<const ViewTree<IntRing>::BatchEntry> span(batch);
    per_tuple.ApplyBatchPerTuple(span);
    sequential.ApplyBatch(span);
    parallel.ApplyBatch(span);
    for (size_t n = 0; n < parallel.plan().nodes().size(); ++n) {
      int node = static_cast<int>(n);
      const auto& wp = parallel.NodeW(node);
      const auto& ws = sequential.NodeW(node);
      const auto& wt = per_tuple.NodeW(node);
      ASSERT_EQ(wp.size(), ws.size()) << "W of node " << n;
      ASSERT_EQ(wp.size(), wt.size()) << "W of node " << n;
      for (const auto& e : wp) {
        ASSERT_EQ(ws.Payload(e.key), e.value);
        ASSERT_EQ(wt.Payload(e.key), e.value);
      }
      const Relation<IntRing>& mp = parallel.NodeM(node);
      const Relation<IntRing>& ms = sequential.NodeM(node);
      ASSERT_EQ(mp.size(), ms.size()) << "M of node " << n;
      for (const auto& e : mp) ASSERT_EQ(ms.Payload(e.key), e.value);
    }
    if (round % 13 != 0) continue;
    std::vector<const Relation<IntRing>*> rels;
    for (size_t a = 0; a < 4; ++a) rels.push_back(&parallel.AtomRelation(a));
    auto oracle = EvaluateQuery<IntRing>(q, rels);
    auto pos = ProjectionPositions(parallel.OutputSchema(), q.free());
    size_t n = 0;
    for (ViewTreeEnumerator<IntRing> it(parallel); it.Valid(); it.Next()) {
      ASSERT_EQ(oracle.Payload(ProjectTuple(it.tuple(), pos)), it.payload());
      ++n;
    }
    ASSERT_EQ(n, oracle.size()) << round;
  }
}

}  // namespace
}  // namespace incr
