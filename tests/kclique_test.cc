// k-clique counter tests (§3.3's [10] pointer): hand-checked graphs and
// randomized streams against the from-scratch oracle, k in {3, 4}.
#include <gtest/gtest.h>

#include "incr/ivme/kclique.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

TEST(KCliqueTest, TriangleBasics) {
  KCliqueCounter c(3);
  EXPECT_TRUE(c.SetEdge(1, 2, true));
  EXPECT_TRUE(c.SetEdge(2, 3, true));
  EXPECT_EQ(c.Count(), 0);
  EXPECT_TRUE(c.SetEdge(3, 1, true));
  EXPECT_EQ(c.Count(), 1);
  // Idempotence and self-loops.
  EXPECT_FALSE(c.SetEdge(1, 2, true));
  EXPECT_FALSE(c.SetEdge(5, 5, true));
  EXPECT_EQ(c.Count(), 1);
  // Undirected: either orientation deletes.
  EXPECT_TRUE(c.SetEdge(2, 1, false));
  EXPECT_EQ(c.Count(), 0);
  EXPECT_EQ(c.NumEdges(), 2u);
}

TEST(KCliqueTest, K4OnCompleteGraphs) {
  // K_n has C(n,4) 4-cliques.
  KCliqueCounter c(4);
  for (Value u = 0; u < 7; ++u) {
    for (Value v = u + 1; v < 7; ++v) c.SetEdge(u, v, true);
  }
  EXPECT_EQ(c.Count(), 35);  // C(7,4)
  // Remove one edge: kills the C(5,2) = 10 cliques containing it.
  c.SetEdge(0, 1, false);
  EXPECT_EQ(c.Count(), 25);
  EXPECT_EQ(c.Count(), c.CountNaive());
}

TEST(KCliqueTest, TriangleOnCompleteGraph) {
  KCliqueCounter c(3);
  for (Value u = 0; u < 8; ++u) {
    for (Value v = u + 1; v < 8; ++v) c.SetEdge(u, v, true);
  }
  EXPECT_EQ(c.Count(), 56);  // C(8,3)
}

class KCliquePropertyTest
    : public ::testing::TestWithParam<std::pair<int, uint64_t>> {};

TEST_P(KCliquePropertyTest, MatchesNaiveUnderChurn) {
  auto [k, seed] = GetParam();
  KCliqueCounter c(k);
  Rng rng(seed);
  const Value kV = 14;  // dense little graph: plenty of cliques
  for (int step = 0; step < 1200; ++step) {
    Value u = rng.UniformInt(0, kV - 1);
    Value v = rng.UniformInt(0, kV - 1);
    c.SetEdge(u, v, rng.Chance(0.55));
    if (step % 101 == 0) {
      ASSERT_EQ(c.Count(), c.CountNaive()) << "step " << step;
    }
  }
  EXPECT_EQ(c.Count(), c.CountNaive());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, KCliquePropertyTest,
    ::testing::Values(std::make_pair(3, 1ull), std::make_pair(3, 2ull),
                      std::make_pair(4, 1ull), std::make_pair(4, 2ull),
                      std::make_pair(4, 3ull)));

}  // namespace
}  // namespace incr
